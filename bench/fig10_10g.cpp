// Figure 10: bandwidth sharing on 10 Gbps links — 8 WRR queues with equal
// weights, queue i fed by 2i senders, queues 2-8 stopping every 50 ms from
// 200 ms. Jain's index across active queues and aggregate throughput per
// 10 ms window.
#include "bench/highspeed_common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));
  const bool series = cli.flag("series");
  const auto csv_dir = cli.text("csv", "");  // print full per-window series

  std::puts("Figure 10 — bandwidth sharing on 10Gbps links (Trident+, 192KB/port)");
  std::puts("(8 WRR queues, queue i has 2i single-flow senders, stops every 50ms)\n");

  for (const auto kind : {core::SchemeKind::kBestEffort, core::SchemeKind::kPql,
                          core::SchemeKind::kDynaQ}) {
    bench::HighSpeedConfig cfg;
    cfg.star = bench::sim10g_star(kind, /*num_hosts=*/1, std::vector<double>(8, 1.0));
    for (int i = 1; i <= 8; ++i) cfg.senders_per_queue.push_back(2 * i);
    cfg.seed = seed;
    const auto rows = bench::run_high_speed(std::move(cfg));
    std::printf("--- %s ---\n", std::string(core::scheme_name(kind)).c_str());
    if (series) bench::print_high_speed(rows);
    std::vector<std::vector<double>> csv_rows;
    for (const auto& row : rows) csv_rows.push_back({row.time_ms, row.jain, row.aggregate_gbps});
    bench::maybe_write_csv(csv_dir, "fig10_" + std::string(core::scheme_name(kind)),
                           {"time_ms", "jain", "aggregate_gbps"}, csv_rows);
    bench::print_high_speed_summary(rows, 10.0);
    std::puts("");
  }
  std::puts("paper shape: DynaQ and PQL near-1 fairness (BestEffort plunges to ~0.67);");
  std::puts("only DynaQ keeps aggregate ~10G after queue 8 stops at 500ms (PQL ~8.5G)");
  std::puts("(pass --series for the full 10ms-window table)");
  return 0;
}
