// Figure 13: large-scale dynamic flows on a 12x12 leaf-spine fabric —
// 144 hosts, SPQ(1)/DRR(7), 7 services each with its own workload CDF,
// ECMP, PIAS 100 KB, load swept 30-80%. Reports the average overall FCT
// and the 99th-percentile small-flow FCT, normalized by DynaQ.
#include <map>

#include "bench/common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  const auto loads = cli.reals("loads", full ? std::vector<double>{0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
                                             : std::vector<double>{0.3, 0.5, 0.7});
  const auto flows = static_cast<std::size_t>(cli.integer("flows", full ? 10'000 : 1'200));
  const int leaves = static_cast<int>(cli.integer("leaves", full ? 12 : 6));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));

  std::printf("Figure 13 — leaf-spine fabric (%dx%d, %d hosts), SPQ(1)/DRR(7), ECMP\n", leaves,
              leaves, leaves * leaves);
  std::printf("(%zu flows per run, 7 services cycling the four workload CDFs)\n\n", flows);

  const std::vector<core::SchemeKind> kinds = {
      core::SchemeKind::kDynaQ, core::SchemeKind::kBestEffort, core::SchemeKind::kPql};
  std::map<core::SchemeKind, std::map<double, stats::FctSummary>> results;
  for (const auto kind : kinds) {
    for (const double load : loads) {
      harness::DynamicLeafSpineConfig cfg;
      cfg.fabric.num_leaves = leaves;
      cfg.fabric.num_spines = leaves;
      cfg.fabric.hosts_per_leaf = leaves;
      cfg.fabric.queue_weights.assign(8, 1.0);
      cfg.fabric.scheme.kind = kind;
      cfg.fabric.scheduler = topo::SchedulerKind::kSpqOverDrr;
      cfg.num_flows = flows;
      cfg.load = load;
      cfg.num_services = 7;
      cfg.seed = seed;
      const auto r = harness::run_dynamic_leaf_spine_experiment(cfg);
      if (r.incomplete > 0) {
        std::fprintf(stderr, "warning: %zu flows incomplete (%s, load %.0f%%)\n", r.incomplete,
                     std::string(core::scheme_name(kind)).c_str(), load * 100);
      }
      results[kind][load] = r.fcts.summarize();
    }
  }

  for (const auto& [title, metric] :
       std::vector<std::pair<const char*, double stats::FctSummary::*>>{
           {"(a) average FCT, overall", &stats::FctSummary::avg_overall_ms},
           {"(b) 99th percentile FCT, small flows", &stats::FctSummary::p99_small_ms}}) {
    std::printf("%s (normalized by DynaQ; raw DynaQ ms on its row)\n", title);
    std::vector<std::string> header{"scheme"};
    for (const double l : loads) header.push_back(bench::fmt(l * 100, 0) + "%");
    harness::Table t(std::move(header));
    for (const auto kind : kinds) {
      std::vector<std::string> row{std::string(core::scheme_name(kind))};
      for (const double l : loads) {
        const double ref = results[core::SchemeKind::kDynaQ][l].*metric;
        const double v = results[kind][l].*metric;
        row.push_back(kind == core::SchemeKind::kDynaQ
                          ? bench::fmt(v, 2) + "ms"
                          : (ref > 0 ? bench::fmt(v / ref, 2) + "x" : "n/a"));
      }
      t.row(std::move(row));
    }
    t.print();
    std::puts("");
  }
  std::puts("paper shape: at 10Gbps the gaps compress — DynaQ ~ BestEffort (0.98x-1.01x");
  std::puts("overall), DynaQ > PQL overall, and p99 small-flow FCTs nearly tie (PQL");
  std::puts("at best 0.98x)");
  return 0;
}
