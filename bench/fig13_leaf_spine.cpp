// Figure 13: large-scale dynamic flows on a 12x12 leaf-spine fabric —
// 144 hosts, SPQ(1)/DRR(7), 7 services each with its own workload CDF,
// ECMP, PIAS 100 KB, load swept 30-80%. Reports the average overall FCT
// and the 99th-percentile small-flow FCT, normalized by DynaQ. The
// (scheme x load x seed) grid runs through the sweep engine — this is by
// far the slowest figure, so --jobs N matters most here.
#include <map>

#include "bench/fct_common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  const auto loads = cli.reals("loads", full ? std::vector<double>{0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
                                             : std::vector<double>{0.3, 0.5, 0.7});
  const auto flows = static_cast<std::size_t>(cli.integer("flows", full ? 10'000 : 1'200));
  const int leaves = static_cast<int>(cli.integer("leaves", full ? 12 : 6));
  const auto seeds = cli.reals("seeds", {static_cast<double>(cli.integer("seed", 1))});
  const auto kinds = bench::schemes_from_cli(
      cli, {core::SchemeKind::kDynaQ, core::SchemeKind::kBestEffort, core::SchemeKind::kPql});

  std::printf("Figure 13 — leaf-spine fabric (%dx%d, %d hosts), SPQ(1)/DRR(7), ECMP\n", leaves,
              leaves, leaves * leaves);
  std::printf("(%zu flows per run, 7 services cycling the four workload CDFs)\n\n", flows);

  const auto run = bench::run_sweep(
      cli, "fig13_leaf_spine", bench::scheme_load_seed_spec(kinds, loads, seeds),
      [&](const sweep::JobPoint& point) {
        harness::DynamicLeafSpineConfig cfg;
        cfg.fabric.num_leaves = leaves;
        cfg.fabric.num_spines = leaves;
        cfg.fabric.hosts_per_leaf = leaves;
        cfg.fabric.queue_weights.assign(8, 1.0);
        cfg.fabric.scheme.kind = core::parse_scheme(point.label("scheme"));
        cfg.fabric.scheduler = topo::SchedulerKind::kSpqOverDrr;
        cfg.num_flows = flows;
        cfg.load = point.number("load");
        cfg.num_services = 7;
        cfg.seed = static_cast<std::uint64_t>(point.number("seed"));
        return bench::fct_metrics(harness::run_dynamic_leaf_spine_experiment(cfg));
      });
  for (const auto& o : run.store.outcomes()) {
    const auto it = o.metrics.find("incomplete");
    if (it != o.metrics.end() && it->second > 0) {
      std::fprintf(stderr, "warning: %.0f flows incomplete (%s, load %.0f%%)\n", it->second,
                   o.point.label("scheme").c_str(), o.point.number("load") * 100);
    }
  }
  const auto results = bench::fct_results_from_store(run.store);

  for (const auto& [title, metric] :
       std::vector<std::pair<const char*, double stats::FctSummary::*>>{
           {"(a) average FCT, overall", &stats::FctSummary::avg_overall_ms},
           {"(b) 99th percentile FCT, small flows", &stats::FctSummary::p99_small_ms}}) {
    bench::print_fct_metric(results, core::SchemeKind::kDynaQ, loads, title, metric);
  }
  std::puts("paper shape: at 10Gbps the gaps compress — DynaQ ~ BestEffort (0.98x-1.01x");
  std::puts("overall), DynaQ > PQL overall, and p99 small-flow FCTs nearly tie (PQL");
  std::puts("at best 0.98x)");
  return run.exit_code;
}
