// Ablation (§II-C): chip-wide shared buffering vs per-port partitioning.
//
// "Many switches allow a single port to occupy many buffers... It also
// harms per-port fairness by taking excessive buffers that can be assigned
// to the other ports." We build that switch: two egress ports drawing from
// one shared SRAM pool under a chip-wide Dynamic Threshold, against DynaQ
// over a static per-port split of the same total memory. Port A is hammered
// by 16 flows; port B carries 2 flows and just wants its BDP.
#include <memory>

#include "bench/common.hpp"
#include "harness/cli.hpp"
#include "net/shared_memory.hpp"
#include "stats/throughput_meter.hpp"
#include "transport/host_agent.hpp"

using namespace dynaq;

namespace {

struct Outcome {
  double port_a_gbps = 0.0;
  double port_b_gbps = 0.0;
  std::int64_t port_b_peak_occupancy = 0;
};

Outcome run(bool shared_pool, std::int64_t pool_bytes, int flows_a, std::uint64_t seed) {
  sim::Simulator sim;
  topo::StarConfig cfg;
  cfg.num_hosts = 8;  // hosts 0,1 receive; 2-7 send
  cfg.link_rate_bps = 1e9;
  cfg.link_delay = microseconds(std::int64_t{125});
  cfg.queue_weights.assign(8, 1.0);  // 8 service queues per port
  cfg.scheduler = topo::SchedulerKind::kDrr;

  net::SharedMemoryPool pool(pool_bytes);
  if (shared_pool) {
    // Shared-buffer switch: per-port cap = whole pool, chip-wide DT.
    cfg.buffer_bytes = pool_bytes;
    cfg.scheme.kind = core::SchemeKind::kDynamicThreshold;
    cfg.scheme.custom_policy = [&pool] {
      return std::make_unique<core::DynamicThresholdPolicy>(1.0, &pool);
    };
  } else {
    // Partitioned switch: DynaQ over a static 85 KB per port.
    cfg.buffer_bytes = pool_bytes / 2;
    cfg.scheme.kind = core::SchemeKind::kDynaQ;
  }
  topo::StarTopology topo(sim, cfg);
  if (shared_pool) {
    for (int port = 0; port < 8; ++port) topo.port_qdisc(port).attach_memory_pool(&pool);
  }

  // Port A (host 0): 16 flows across queues 0/1 from hosts 2-3.
  // Port B (host 1): 2 flows from hosts 4-5.
  std::uint32_t id = 1;
  auto start = [&](int dst, int src, int queue) {
    transport::FlowParams params;
    params.id = id++;
    params.src_host = src;
    params.dst_host = dst;
    params.size_bytes = 0;
    params.stop = seconds(std::int64_t{5});
    params.service_queue = queue;
    params.initial_srtt = microseconds(std::int64_t{525});
    topo.agent(dst).add_receiver(params);
    topo.agent(src).add_sender(params).start();
  };
  // Port A spreads its flows across all 8 service queues (a busy trunk);
  // port B carries a single flow on one queue.
  for (int f = 0; f < flows_a; ++f) start(0, 2 + f % 2, f % 8);
  start(1, 4, 0);
  start(1, 5, 1);

  stats::ThroughputMeter meter_a(8, milliseconds(std::int64_t{500}));
  stats::ThroughputMeter meter_b(8, milliseconds(std::int64_t{500}));
  topo.port_qdisc(0).on_dequeue_hook = [&](int q, const net::Packet& p, Time now) {
    if (!p.is_ack()) meter_a.record(q, p.size, now);
  };
  topo.port_qdisc(1).on_dequeue_hook = [&](int q, const net::Packet& p, Time now) {
    if (!p.is_ack()) meter_b.record(q, p.size, now);
  };
  Outcome o;
  topo.port_qdisc(1).on_op_hook = [&](const net::MqState& state, Time) {
    o.port_b_peak_occupancy = std::max(o.port_b_peak_occupancy, state.port_bytes);
  };

  sim.run_until(seconds(std::int64_t{5}));
  (void)seed;
  for (int q = 0; q < 8; ++q) {
    o.port_a_gbps += meter_a.mean_gbps(q, 2, meter_a.num_windows());
    o.port_b_gbps += meter_b.mean_gbps(q, 2, meter_b.num_windows());
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));
  const std::int64_t pool_bytes = cli.integer("pool-kb", 120) * 1000;
  const int flows_a = static_cast<int>(cli.integer("flows-a", 32));

  std::puts("Ablation — shared switch memory (chip-wide DT) vs per-port DynaQ partition");
  std::printf("(%lldKB total; port A receives %d flows, port B receives 2 flows)\n\n",
              static_cast<long long>(pool_bytes / 1000), flows_a);

  harness::Table t({"configuration", "portA_Gbps", "portB_Gbps", "portB_peak_buffer_KB"});
  const auto shared = run(true, pool_bytes, flows_a, seed);
  const auto split = run(false, pool_bytes, flows_a, seed);
  t.row({"shared pool + chip-wide DT", bench::fmt(shared.port_a_gbps),
         bench::fmt(shared.port_b_gbps),
         bench::fmt(static_cast<double>(shared.port_b_peak_occupancy) / 1000.0, 1)});
  t.row({"half-pool/port + DynaQ", bench::fmt(split.port_a_gbps), bench::fmt(split.port_b_gbps),
         bench::fmt(static_cast<double>(split.port_b_peak_occupancy) / 1000.0, 1)});
  t.print();
  std::puts("\n§II-C's argument: the aggressive port can take buffers that would have");
  std::puts("belonged to the other port; DynaQ's per-port partition isolates them");
  return 0;
}
