// Figure 8: FCT comparison against the non-ECN schemes (BestEffort, PQL)
// with SPQ(1)/DRR(4), web search workload, PIAS 100 KB demotion, traffic
// load swept 30-80%. All series are normalized by DynaQ as in the paper.
// The (scheme x load x seed) grid runs through the sweep engine: --jobs N
// parallelizes it, --seeds 1,2,3 adds replicas, --json emits the records.
#include "bench/fct_common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  bench::FctSweepConfig sweep;
  sweep.schemes = bench::schemes_from_cli(
      cli, {core::SchemeKind::kDynaQ, core::SchemeKind::kBestEffort, core::SchemeKind::kPql});
  sweep.loads = cli.reals("loads", full ? std::vector<double>{0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
                                        : std::vector<double>{0.3, 0.5, 0.7});
  sweep.flows = static_cast<std::size_t>(cli.integer("flows", full ? 10'000 : 1'500));
  sweep.seeds = cli.reals("seeds", {static_cast<double>(cli.integer("seed", 1))});
  const auto csv_dir = cli.text("csv", "");

  std::puts("Figure 8 — FCT vs non-ECN schemes, SPQ(1)/DRR(4), web search workload");
  std::printf("(%zu flows per run, PIAS demotion at 100KB, TCP/NewReno)\n\n", sweep.flows);

  const auto run = bench::run_fct_sweep(cli, "fig08_fct_non_ecn", sweep);
  const auto results = bench::fct_results_from_store(run.store);
  bench::write_fct_csv(csv_dir, "fig08", results);
  bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                          "(a) average FCT, overall", &stats::FctSummary::avg_overall_ms);
  bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                          "(b) average FCT, small flows (<=100KB)",
                          &stats::FctSummary::avg_small_ms);
  bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                          "(c) 99th percentile FCT, small flows",
                          &stats::FctSummary::p99_small_ms);
  bench::print_fct_metric(results, core::SchemeKind::kDynaQ, sweep.loads,
                          "(d) average FCT, large flows (>10MB)",
                          &stats::FctSummary::avg_large_ms);
  bench::print_drop_breakdown(run.store);

  std::puts("paper shape: DynaQ ~ BestEffort overall (0.90x-1.02x); DynaQ beats PQL on");
  std::puts("large flows (up to 1.95x); DynaQ clearly best on small-flow avg and p99,");
  std::puts("with BestEffort's p99 exploding at high load (8.4x at 60%)");
  return run.exit_code;
}
