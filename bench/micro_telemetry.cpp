// Micro-benchmark of the telemetry fast path (DESIGN.md §8 overhead
// model): per-op cost of the DynaQ qdisc hot loop with (a) no hub attached
// — one null-pointer test per emission site, (b) a hub attached but
// disabled — one extra bool load, and (c) a hub enabled — counters plus the
// ring write. Run with --assert-budget-ns N (used by ci.sh) to fail when
// the attached-disabled path costs more than N ns/op over the no-hub
// baseline; --ops / --reps scale the measurement.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/scheme.hpp"
#include "harness/cli.hpp"
#include "net/multi_queue_qdisc.hpp"
#include "net/schedulers.hpp"
#include "sim/simulator.hpp"
#include "telemetry/hub.hpp"

using namespace dynaq;

namespace {

enum class HubMode { kNone, kDisabled, kEnabled };

// One measured pass over the DynaQ enqueue/dequeue hot loop; returns ns/op.
double measure(HubMode mode, long ops) {
  sim::Simulator sim;
  core::SchemeSpec spec;
  spec.kind = core::SchemeKind::kDynaQ;
  auto qd = core::make_mq_qdisc(sim, std::vector<double>(8, 1.0), 192'000, spec,
                                std::make_unique<net::DrrScheduler>(1500));
  telemetry::Hub hub(sim, {.ring_capacity = 1024});
  if (mode != HubMode::kNone) {
    hub.set_enabled(mode == HubMode::kEnabled);
    qd->attach_telemetry(hub, "sw.p0");
  }

  std::uint64_t sink = 0;
  int q = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (long i = 0; i < ops; ++i) {
    net::Packet p = net::make_data_packet(1, 0, 1, 0, 1460);
    p.queue = static_cast<std::uint8_t>(q);
    sink += qd->enqueue(std::move(p)) ? 1 : 0;
    if (qd->backlog_bytes() > 150'000) {
      while (qd->backlog_bytes() > 50'000) sink += qd->dequeue() ? 1 : 0;
    }
    q = (q + 1) & 7;
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (sink == 0) std::abort();  // keep the loop observable
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(ops);
}

// Minimum over reps — the standard noise filter for short hot loops.
double best_of(HubMode mode, long ops, int reps) {
  double best = measure(mode, ops);
  for (int r = 1; r < reps; ++r) {
    const double ns = measure(mode, ops);
    if (ns < best) best = ns;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const long ops = cli.integer("ops", 2'000'000);
  const int reps = static_cast<int>(cli.integer("reps", 5));
  const double budget_ns = static_cast<double>(cli.integer("assert-budget-ns", 0));

  std::puts("Telemetry fast-path overhead (DynaQ qdisc enqueue/dequeue hot loop)");
  std::printf("(%ld ops per pass, best of %d passes)\n\n", ops, reps);

  const double none_ns = best_of(HubMode::kNone, ops, reps);
  const double disabled_ns = best_of(HubMode::kDisabled, ops, reps);
  const double enabled_ns = best_of(HubMode::kEnabled, ops, reps);

  std::printf("no hub attached      : %8.2f ns/op\n", none_ns);
  std::printf("attached, disabled   : %8.2f ns/op  (+%.2f)\n", disabled_ns,
              disabled_ns - none_ns);
  std::printf("attached, enabled    : %8.2f ns/op  (+%.2f)\n", enabled_ns,
              enabled_ns - none_ns);

  if (budget_ns > 0) {
    const double overhead = disabled_ns - none_ns;
    if (overhead > budget_ns) {
      std::fprintf(stderr,
                   "FAIL: attached-disabled overhead %.2f ns/op exceeds budget %.2f ns/op\n",
                   overhead, budget_ns);
      return 1;
    }
    std::printf("\nPASS: attached-disabled overhead %.2f ns/op within budget %.2f ns/op\n",
                overhead, budget_ns);
  }
  return 0;
}
