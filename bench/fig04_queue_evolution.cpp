// Figure 4: queue-length evolution for the Figure 3 scenario — 1K
// sequential per-operation samples of both active queues' occupancy (and,
// for DynaQ, the dynamic drop thresholds).
#include "bench/common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));
  const auto samples = static_cast<std::size_t>(cli.integer("samples", 1000));
  const auto jsonl_dir = cli.text("jsonl", "");

  std::puts("Figure 4 — queue length evolution of 2 active DRR queues (equal weights)");
  std::puts("(1K sequential per-enqueue/dequeue samples after warmup)\n");

  const core::SchemeKind kinds[] = {core::SchemeKind::kBestEffort, core::SchemeKind::kPql,
                                    core::SchemeKind::kDynaQ};
  for (const auto kind : kinds) {
    harness::StaticExperimentConfig cfg;
    cfg.star = bench::testbed_star(kind, /*num_hosts=*/5);
    cfg.groups = {
        {.queue = 0, .num_flows = 2, .first_src_host = 1, .num_src_hosts = 2,
         .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
        {.queue = 1, .num_flows = 16, .first_src_host = 3, .num_src_hosts = 2,
         .start = 0, .stop = 0, .cc = transport::CcKind::kNewReno},
    };
    cfg.duration = seconds(std::int64_t{6});
    cfg.queue_samples = samples;
    cfg.queue_sample_skip = 500'000;  // sample deep in steady state
    cfg.seed = seed;
    const auto r = harness::run_static_experiment(cfg);

    std::printf("--- %s ---\n", std::string(core::scheme_name(kind)).c_str());
    std::vector<double> q1;
    std::vector<double> q2;
    std::vector<double> t1;
    std::vector<double> t2;
    for (const auto& s : r.queue_samples) {
      q1.push_back(static_cast<double>(s.queue_bytes[0]) / 1000.0);
      q2.push_back(static_cast<double>(s.queue_bytes[1]) / 1000.0);
      if (s.thresholds.size() >= 2) {
        t1.push_back(static_cast<double>(s.thresholds[0]) / 1000.0);
        t2.push_back(static_cast<double>(s.thresholds[1]) / 1000.0);
      }
    }
    harness::Table t({"metric", "queue1_KB", "queue2_KB"});
    t.row({"mean occupancy", bench::fmt(stats::mean(q1), 1), bench::fmt(stats::mean(q2), 1)});
    t.row({"p50 occupancy", bench::fmt(stats::percentile(q1, 50), 1),
           bench::fmt(stats::percentile(q2, 50), 1)});
    t.row({"p90 occupancy", bench::fmt(stats::percentile(q1, 90), 1),
           bench::fmt(stats::percentile(q2, 90), 1)});
    if (!t1.empty()) {
      t.row({"mean drop threshold", bench::fmt(stats::mean(t1), 1),
             bench::fmt(stats::mean(t2), 1)});
    }
    if (r.telemetry.queue_delay.size() >= 2) {
      t.row({"p99 queueing delay us", bench::fmt(r.telemetry.queue_delay[0].p99_us, 1),
             bench::fmt(r.telemetry.queue_delay[1].p99_us, 1)});
    }
    t.print();
    std::puts("");
    if (!jsonl_dir.empty()) {
      const auto path =
          jsonl_dir + "/fig04_" + std::string(core::scheme_name(kind)) + ".events.jsonl";
      if (telemetry::write_events_jsonl(path, r.telemetry_events, r.telemetry_ports)) {
        std::printf("wrote %s (%zu events)\n\n", path.c_str(), r.telemetry_events.size());
      }
    }
  }
  std::puts("paper shape: BestEffort lets queue2 dominate the buffer; PQL caps each queue");
  std::puts("at its 21.25KB reservation; DynaQ's thresholds move so both queues hold");
  std::puts("enough buffer for their fair share");
  return 0;
}
