// Figure 11: bandwidth sharing on 100 Gbps links — the Figure 10 scenario
// on Trident 3-class ports (1 MB buffer), 40 us base RTT, jumbo frames.
#include "bench/highspeed_common.hpp"

using namespace dynaq;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 1));
  const bool series = cli.flag("series");
  const auto csv_dir = cli.text("csv", "");

  std::puts("Figure 11 — bandwidth sharing on 100Gbps links (Trident 3, 1MB/port, jumbo)");
  std::puts("(8 WRR queues, queue i has 2i single-flow senders, stops every 50ms)\n");

  for (const auto kind : {core::SchemeKind::kBestEffort, core::SchemeKind::kPql,
                          core::SchemeKind::kDynaQ}) {
    bench::HighSpeedConfig cfg;
    cfg.star = bench::sim100g_star(kind, /*num_hosts=*/1, std::vector<double>(8, 1.0));
    for (int i = 1; i <= 8; ++i) cfg.senders_per_queue.push_back(2 * i);
    cfg.mss = net::kJumboMss;
    cfg.seed = seed;
    const auto rows = bench::run_high_speed(std::move(cfg));
    std::printf("--- %s ---\n", std::string(core::scheme_name(kind)).c_str());
    if (series) bench::print_high_speed(rows);
    std::vector<std::vector<double>> csv_rows;
    for (const auto& row : rows) csv_rows.push_back({row.time_ms, row.jain, row.aggregate_gbps});
    bench::maybe_write_csv(csv_dir, "fig11_" + std::string(core::scheme_name(kind)),
                           {"time_ms", "jain", "aggregate_gbps"}, csv_rows);
    bench::print_high_speed_summary(rows, 100.0);
    std::puts("");
  }
  std::puts("paper shape: same tendency as 10G — BestEffort unfair, PQL loses a large");
  std::puts("amount of throughput once queue 1 is alone, DynaQ keeps both properties");
  return 0;
}
