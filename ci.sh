#!/usr/bin/env bash
# CI entry point: four configurations, all deterministic (every experiment
# binary and test is seeded; see CLAUDE.md).
#
#   1. RelWithDebInfo with -Werror           (the performance configuration)
#      + trajectory-hash differential gate   (DESIGN.md §10)
#   2. Debug with ASan+UBSan, full ctest     (the memory/UB configuration)
#   3. TSan on the sweep worker pool         (the data-race configuration)
#   4. Convention + determinism lint (+ clang-tidy when available)
#
# Usage: ./ci.sh [--skip-asan] [--skip-tsan]   # sanitizer passes add wall time
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 2)
skip_asan=0
skip_tsan=0
for arg in "$@"; do
  [[ "$arg" == "--skip-asan" ]] && skip_asan=1
  [[ "$arg" == "--skip-tsan" ]] && skip_tsan=1
done

# Smoke sweep (2 schemes x 2 seeds, --jobs 2, --strict): exercises the
# src/sweep worker pool end to end. Under the sanitizer configuration it
# doubles as a data-race shakeout; under the perf configuration its JSON
# (per-job wall time + FCT aggregates) becomes the repo-root BENCH_sweep.json
# perf trajectory.
smoke_sweep() {  # smoke_sweep <build-dir> [extra flags...]
  local build="$1"
  shift
  "$build/bench/fig08_fct_non_ecn" --schemes=DynaQ,BestEffort --seeds=1,2 \
      --loads=0.5 --flows=200 --jobs=2 --strict "$@" > /dev/null
}

echo "==> [1/4] RelWithDebInfo + -Werror"
cmake -B build-ci -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDYNAQ_WERROR=ON > /dev/null
cmake --build build-ci -j "$jobs"
ctest --test-dir build-ci -j "$jobs" --output-on-failure
echo "==> [1/4] smoke sweep -> BENCH_sweep.json"
smoke_sweep build-ci --bench-json BENCH_sweep.json
echo "==> [1/4] telemetry fast-path budget (micro_telemetry)"
# Disabled-hub overhead must stay a single guarded branch (DESIGN.md §8);
# the budget is generous vs. the ~1ns branch cost to keep CI noise-proof.
build-ci/bench/micro_telemetry --ops=300000 --reps=3 --assert-budget-ns=25
echo "==> [1/4] event-engine perf regression (micro_simulator) -> BENCH_core.json"
# Soft ns/event budgets plus a hard zero-heap-fallback gate (DESIGN.md §9);
# the JSON snapshot is the committed perf trajectory, like BENCH_sweep.json.
build-ci/bench/micro_simulator --reps=5 --assert-budget --json BENCH_core.json
echo "==> [1/4] trajectory-hash differential gate (DESIGN.md §10)"
# Same seed twice and --jobs 1 vs 4 must hash identically; different seeds
# must diverge. Catches nondeterminism the unit tests' small runs may miss.
tools/check_determinism.sh build-ci
echo "==> [1/4] fidelity report gate (report_gen, DESIGN.md §13)"
# Evaluate the expectation catalogue over the smoke sweep, append this
# rev's row to the BENCH_history.jsonl perf ledger, and re-apply the bench
# budgets to it; any failed expectation or bench regression fails CI.
build-ci/tools/report_gen --gate \
    --sweep BENCH_sweep.json --bench-core BENCH_core.json \
    --history BENCH_history.jsonl \
    --rev "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    --out results/REPORT.md

if [[ $skip_asan -eq 0 ]]; then
  echo "==> [2/4] ASan+UBSan ctest"
  cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=Debug -DDYNAQ_WERROR=ON \
        "-DDYNAQ_SANITIZE=address;undefined" > /dev/null
  cmake --build build-asan -j "$jobs"
  ASAN_OPTIONS=detect_leaks=1 ctest --test-dir build-asan -j "$jobs" --output-on-failure
  echo "==> [2/4] ASan+UBSan smoke sweep (--jobs 2)"
  ASAN_OPTIONS=detect_leaks=1 smoke_sweep build-asan --json build-asan
  echo "==> [2/4] ASan+UBSan scenario smoke (rob_link_flap, DESIGN.md §11)"
  # Mid-run link flaps + weight churn under the sanitizers: timer
  # cancellation and handle mutation must be clean of UB and leaks.
  ASAN_OPTIONS=detect_leaks=1 build-asan/bench/rob_link_flap --duration-s=1 \
      --schemes=DynaQ --seeds=1 --strict > /dev/null
  ASAN_OPTIONS=detect_leaks=1 build-asan/bench/rob_weight_churn --duration-s=1 \
      --scenario=mixed --schemes=DynaQ --seeds=1 --strict > /dev/null
  echo "==> [2/4] ASan+UBSan control-plane smoke (rob_controller, DESIGN.md §14)"
  # Async threshold commits, watchdog failover to DT and the reliable
  # re-sync under the sanitizers: the shim's timer closures and the
  # RecoveryInstrument subscription must be clean of UB and leaks.
  ASAN_OPTIONS=detect_leaks=1 build-asan/bench/rob_controller --duration-s=1 \
      --scenario=controller_crash --schemes=DynaQ --seeds=1 --strict > /dev/null
  echo "==> [2/4] ASan+UBSan oracle smoke (abl_competitive, DESIGN.md §12)"
  # Trace recording off the hub taps + the offline-optimal replay under the
  # sanitizers, covering the new LQD/Harmonic policies under audit.
  ASAN_OPTIONS=detect_leaks=1 build-asan/bench/abl_competitive --flows=120 \
      --seeds=1 --schemes=DynaQ,LQD,Harmonic --strict > /dev/null
else
  echo "==> [2/4] ASan+UBSan ctest (skipped)"
fi

if [[ $skip_tsan -eq 0 ]]; then
  echo "==> [3/4] TSan sweep worker pool"
  # Threads live only in src/sweep (CLAUDE.md), so TSan needs just the sweep
  # tests and one sweep-driving bench — build those targets, not the world.
  cmake -B build-tsan -G Ninja -DCMAKE_BUILD_TYPE=Debug -DDYNAQ_WERROR=ON \
        "-DDYNAQ_SANITIZE=thread" > /dev/null
  cmake --build build-tsan -j "$jobs" --target sweep_test fig08_fct_non_ecn
  TSAN_OPTIONS=halt_on_error=1 build-tsan/tests/sweep_test
  echo "==> [3/4] TSan smoke sweep (--jobs 4)"
  TSAN_OPTIONS=halt_on_error=1 smoke_sweep build-tsan --jobs=4 --json build-tsan
else
  echo "==> [3/4] TSan sweep worker pool (skipped)"
fi

echo "==> [4/4] convention + determinism lint"
tools/detlint --self-test
tools/check_conventions.sh
if command -v clang-tidy > /dev/null 2>&1; then
  cmake -B build-ci -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  # Library sources only; tests/benches follow looser patterns.
  find src -name '*.cpp' -print0 | xargs -0 clang-tidy -p build-ci --quiet
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

echo "CI: all configurations passed"
